"""The differential fuzzer: generator, mutators, oracle matrix, engine.

The engine tests double as the harness's conformance gate: a smoke
campaign must come back with zero discrepancies, an intentionally
broken model must be caught *and* shrunk to a tiny witness, and the
whole campaign must be byte-reproducible from its seed -- including
across worker counts and back-to-back runs in one process (which is
what the conftest isolation fixture plus the run-local coverage map
guarantee).
"""

from __future__ import annotations

import random

import pytest

from repro.enumeration import get_config
from repro.events.wellformed import is_well_formed
from repro.fuzz import (
    DIFF_MODELS,
    FuzzCase,
    FuzzConfig,
    diagnose,
    evaluate_case,
    execution_digest,
    execution_from_json,
    execution_to_json,
    load_corpus,
    model_axioms,
    mutate,
    replay,
    run_fuzz,
    sample_execution,
    shrink,
    splice_thread,
)

ARCHES = ("x86", "power", "armv8", "cpp", "sc")


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", ARCHES)
def test_sampled_executions_are_well_formed(arch):
    config = get_config(arch)
    rng = random.Random(13)
    for _ in range(25):
        x = sample_execution(rng, config, rng.randint(1, 7))
        assert is_well_formed(x)


def test_sampling_is_deterministic_under_a_seed():
    config = get_config("x86")
    runs = [
        [
            execution_digest(sample_execution(random.Random(99), config, n))
            for n in range(1, 7)
        ]
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_different_seeds_reach_different_executions():
    config = get_config("x86")
    digests = {
        execution_digest(sample_execution(random.Random(seed), config, 6))
        for seed in range(20)
    }
    assert len(digests) > 1


# ---------------------------------------------------------------------------
# Mutation operators
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("arch", ARCHES)
def test_mutations_preserve_well_formedness(arch):
    config = get_config(arch)
    rng = random.Random(7)
    pool = [sample_execution(rng, config, rng.randint(2, 6)) for _ in range(6)]
    produced = 0
    for x in pool:
        for _ in range(10):
            mutated = mutate(rng, x, config, donor=rng.choice(pool))
            if mutated is not None:
                assert is_well_formed(mutated)
                produced += 1
    assert produced > 0


def test_splice_thread_grafts_a_new_thread():
    config = get_config("x86")
    rng = random.Random(3)
    x = sample_execution(rng, config, 3)
    donor = sample_execution(rng, config, 3)
    spliced = splice_thread(rng, x, donor)
    assert spliced is not None
    assert is_well_formed(spliced)
    assert len(spliced.threads) == len(x.threads) + 1
    assert set(x.eids) <= set(spliced.eids)


# ---------------------------------------------------------------------------
# Corpus serialisation
# ---------------------------------------------------------------------------


def test_execution_json_round_trip():
    config = get_config("cpp")
    rng = random.Random(21)
    for _ in range(10):
        x = sample_execution(rng, config, rng.randint(1, 6))
        back = execution_from_json(execution_to_json(x))
        assert execution_digest(back) == execution_digest(x)
        assert back.events == x.events
        assert back.rf.pairs == x.rf.pairs
        assert back.co.pairs == x.co.pairs
        assert back.txn_of == x.txn_of


def test_digest_is_content_addressed():
    config = get_config("x86")
    x = sample_execution(random.Random(5), config, 4)
    assert execution_digest(x) == execution_digest(x.replace())


# ---------------------------------------------------------------------------
# Oracle matrix
# ---------------------------------------------------------------------------


def test_model_axioms_are_published():
    for name in DIFF_MODELS:
        assert model_axioms(name), name


def test_clean_case_has_no_findings():
    config = get_config("x86")
    x = sample_execution(random.Random(1), config, 4)
    case = FuzzCase(execution=x, arch="x86")
    findings = diagnose(case, evaluate_case(case))
    assert findings == []


def test_mutant_disagreement_is_detected():
    # Dropping Coherence from x86tm must disagree with the pristine
    # model on *some* case; scan a few seeds for one.
    config = get_config("x86")
    rng = random.Random(2)
    for _ in range(60):
        x = sample_execution(rng, config, rng.randint(2, 5))
        case = FuzzCase(
            execution=x,
            arch="x86",
            mutant=("x86tm", ("Coherence",)),
            check_sim=False,
        )
        findings = diagnose(case, evaluate_case(case))
        if any(f["kind"] == "mutant" for f in findings):
            return
    pytest.fail("no execution separated the Coherence-less mutant")


# ---------------------------------------------------------------------------
# Shrinker
# ---------------------------------------------------------------------------


def test_shrink_reaches_a_minimal_witness():
    # Predicate: execution still has at least one rf edge.  The minimum
    # is a single write feeding a single read.
    config = get_config("x86")
    rng = random.Random(17)
    x = None
    while x is None or not x.rf.pairs:
        x = sample_execution(rng, config, 6)
    small = shrink(x, lambda c: bool(c.rf.pairs), config=config)
    assert is_well_formed(small)
    assert small.rf.pairs
    assert len(small.events) == 2


def test_shrink_returns_input_when_nothing_smaller_works():
    config = get_config("x86")
    x = sample_execution(random.Random(19), config, 2)
    assert shrink(x, lambda c: False, config=config) == x


# ---------------------------------------------------------------------------
# Engine campaigns
# ---------------------------------------------------------------------------


def test_smoke_campaign_is_clean(tmp_path):
    corpus = tmp_path / "corpus.jsonl"
    report = run_fuzz(
        FuzzConfig(arch="x86", seed=7, budget=24, corpus=str(corpus))
    )
    assert report.clean
    assert report.cases == 24
    assert report.coverage["verdict_patterns"] >= 1
    assert corpus.read_text() == ""  # clean campaign, verifiably empty


def test_back_to_back_campaigns_are_identical(tmp_path):
    """Order-independence regression: two identical smoke campaigns in
    one process must produce identical verdicts and corpora (run-local
    coverage state; no leakage through the metrics registry)."""
    outs = []
    for index in range(2):
        corpus = tmp_path / f"corpus-{index}.jsonl"
        report = run_fuzz(
            FuzzConfig(
                arch="x86",
                seed=11,
                budget=24,
                corpus=str(corpus),
                mutant=("x86tm", ("Coherence",)),
            )
        )
        outs.append((corpus.read_bytes(), len(report.discrepancies)))
    assert outs[0] == outs[1]


def test_injected_mutant_is_caught_and_shrunk(tmp_path):
    corpus = tmp_path / "corpus.jsonl"
    report = run_fuzz(
        FuzzConfig(
            arch="x86",
            seed=7,
            budget=48,
            corpus=str(corpus),
            mutant=("x86tm", ("Coherence",)),
        )
    )
    assert not report.clean
    assert all(d["kind"] == "mutant" for d in report.discrepancies)
    # The shrinker must land a tiny witness (the acceptance bound is 6;
    # coherence violations actually minimise to 2 events).
    smallest = min(
        len(d["execution"]["events"]) for d in report.discrepancies
    )
    assert smallest <= 6
    records = load_corpus(corpus)
    assert len(records) == len(report.discrepancies)
    assert all(r["litmus"] for r in records if len(r["execution"]["events"]))


def test_corpus_is_byte_identical_across_worker_counts(tmp_path):
    blobs = []
    for index, workers in enumerate((1, 2)):
        corpus = tmp_path / f"corpus-{index}.jsonl"
        run_fuzz(
            FuzzConfig(
                arch="x86",
                seed=7,
                budget=32,
                corpus=str(corpus),
                workers=workers,
                mutant=("x86tm", ("Coherence",)),
            )
        )
        blobs.append(corpus.read_bytes())
    assert blobs[0] == blobs[1]
    assert blobs[0]  # the mutant guarantees a non-empty corpus


def test_replay_reproduces_a_recorded_witness(tmp_path):
    corpus = tmp_path / "corpus.jsonl"
    report = run_fuzz(
        FuzzConfig(
            arch="x86",
            seed=7,
            budget=48,
            corpus=str(corpus),
            mutant=("x86tm", ("Coherence",)),
        )
    )
    digest = report.discrepancies[0]["digest"]
    record, findings = replay(str(corpus), digest[:12])
    assert record is not None
    assert record["digest"] == digest
    # The mutant was injected by the campaign, not recorded in the
    # execution, so a pristine replay has no findings -- the witness
    # itself must still round-trip and re-evaluate cleanly.
    assert findings == []
    missing, _ = replay(str(corpus), "0" * 12)
    assert missing is None or missing["digest"].startswith("0" * 12)


@pytest.mark.parametrize("arch", ("power", "armv8", "cpp", "sc"))
def test_smoke_campaigns_on_other_arches(arch, tmp_path):
    report = run_fuzz(
        FuzzConfig(
            arch=arch,
            seed=11,
            budget=16,
            corpus=str(tmp_path / "corpus.jsonl"),
        )
    )
    assert report.clean
    assert report.cases == 16


@pytest.mark.slow
def test_deep_campaign_is_clean(tmp_path):
    report = run_fuzz(
        FuzzConfig(
            arch="x86",
            seed=7,
            budget=200,
            corpus=str(tmp_path / "corpus.jsonl"),
        )
    )
    assert report.clean
    assert report.cases == 200


def test_seed_corpus_feeds_the_mutation_pool(tmp_path):
    seed_corpus = tmp_path / "seeds.jsonl"
    report = run_fuzz(
        FuzzConfig(
            arch="x86",
            seed=7,
            budget=32,
            corpus=str(seed_corpus),
            mutant=("x86tm", ("Coherence",)),
        )
    )
    assert report.corpus_records
    out = run_fuzz(
        FuzzConfig(
            arch="x86",
            seed=8,
            budget=16,
            corpus=str(tmp_path / "out.jsonl"),
            seed_corpus=str(seed_corpus),
        )
    )
    assert out.clean
