"""Property-based tests over randomly generated well-formed executions.

A hypothesis strategy builds arbitrary well-formed executions (random
threads, kinds, locations, rf/co choices, dependencies, transactions),
then checks the structural invariants the models rely on: the fr
definition, the com decomposition, external/internal partitions, the
PER laws of stxn, and that every §4.2 weakening step preserves
well-formedness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enumeration import get_config, weakenings
from repro.events import Execution, Event, is_well_formed
from repro.models.cpp import CppModel

LOCS = ("x", "y")


@st.composite
def executions(draw) -> Execution:
    n = draw(st.integers(min_value=1, max_value=5))
    n_threads = draw(st.integers(min_value=1, max_value=min(3, n)))
    # Assign each event to a thread, ensuring no thread is empty.
    tids = list(range(n_threads)) + [
        draw(st.integers(min_value=0, max_value=n_threads - 1))
        for _ in range(n - n_threads)
    ]
    kinds = [draw(st.sampled_from(["R", "W"])) for _ in range(n)]
    locs = [draw(st.sampled_from(LOCS)) for _ in range(n)]
    events = [
        Event(eid=i, tid=tids[i], kind=kinds[i], loc=locs[i])
        for i in range(n)
    ]
    threads = [
        tuple(i for i in range(n) if tids[i] == t) for t in range(n_threads)
    ]

    # rf: each read observes a same-location write or the initial value.
    rf = []
    for i in range(n):
        if kinds[i] != "R":
            continue
        sources = [
            j for j in range(n) if kinds[j] == "W" and locs[j] == locs[i]
        ]
        choice = draw(st.sampled_from(sources + [None]))
        if choice is not None:
            rf.append((choice, i))

    # co: a random permutation per location.
    co = []
    for loc in LOCS:
        writes = [i for i in range(n) if kinds[i] == "W" and locs[i] == loc]
        perm = draw(st.permutations(writes))
        co.extend(zip(perm, perm[1:]))

    # Dependencies: a random subset of read-to-later pairs.
    deps = {"addr": [], "ctrl": [], "data": []}
    for seq in threads:
        for a_pos, a in enumerate(seq):
            if kinds[a] != "R":
                continue
            for b in seq[a_pos + 1 :]:
                kind = draw(
                    st.sampled_from([None, None, "addr", "ctrl", "data"])
                )
                if kind == "data" and kinds[b] != "W":
                    kind = None
                if kind:
                    deps[kind].append((a, b))

    # Transactions: maybe box a contiguous prefix of one thread.
    txn_of = {}
    if draw(st.booleans()) and threads[0]:
        length = draw(st.integers(min_value=1, max_value=len(threads[0])))
        for e in threads[0][:length]:
            txn_of[e] = 0

    return Execution(
        events,
        threads,
        rf=rf,
        co=co,
        addr=deps["addr"],
        ctrl=deps["ctrl"],
        data=deps["data"],
        txn_of=txn_of,
    )


@given(executions())
def test_generated_executions_are_well_formed(x):
    assert is_well_formed(x)


@given(executions())
def test_fr_source_reads_fr_target_writes(x):
    for a, b in x.fr.pairs:
        assert x.event(a).is_read and x.event(b).is_write
        assert x.event(a).loc == x.event(b).loc


@given(executions())
def test_fr_never_points_at_observed_or_earlier_write(x):
    """A read is fr-before exactly the writes strictly co-after the one
    it observed (all writes, for an initial-value read)."""
    for w, r in x.rf.pairs:
        assert (r, w) not in x.fr
        for earlier in x.co.predecessors(w):
            assert (r, earlier) not in x.fr
        for later in x.co.successors(w):
            assert (r, later) in x.fr


@given(executions())
def test_init_reads_fr_before_every_write(x):
    reads_with_rf = x.rf.range()
    for e in x.events:
        if e.is_read and e.eid not in reads_with_rf:
            for w in x.writes_to(e.loc):
                assert (e.eid, w) in x.fr


@given(executions())
def test_com_is_disjoint_union_components(x):
    assert x.com == (x.rf | x.co | x.fr)
    # rf targets reads; co and fr target writes: rf is disjoint from both.
    assert (x.rf & x.co).is_empty()
    assert (x.rf & x.fr).is_empty()


@given(executions())
def test_external_internal_partition(x):
    for name in ("rf", "co", "fr"):
        rel = getattr(x, name)
        external = getattr(x, f"{name}e")
        internal = getattr(x, f"{name}i")
        assert rel == external | internal
        assert (external & internal).is_empty()


@given(executions())
def test_stxn_is_partial_equivalence(x):
    assert x.stxn.is_partial_equivalence()
    assert x.stxnat.pairs <= x.stxn.pairs


@given(executions())
def test_tfence_within_po_and_touches_txn(x):
    for a, b in x.tfence.pairs:
        assert (a, b) in x.po
        assert a in x.txn_of or b in x.txn_of


@settings(max_examples=40)
@given(executions())
def test_weakenings_preserve_well_formedness(x):
    config = get_config("power")
    for child in weakenings(x, config):
        assert is_well_formed(child), child.describe()


@settings(max_examples=40)
@given(executions())
def test_cpp_conflicts_symmetric_closure(x):
    model = CppModel(transactional=True)
    cnf = model.conflicts(x)
    assert cnf == cnf.inverse()
