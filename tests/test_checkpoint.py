"""Checkpoint/resume: stable digests, the JSONL store, crash recovery.

The headline property (the acceptance criterion for the checkpoint
feature): a pipeline run killed mid-batch and restarted from its
checkpoint file produces results identical to an uninterrupted run --
sequentially and under multiprocessing fan-out.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness import CheckPipeline
from repro.harness.table1 import run_table1
from repro.harness import pipeline as pipeline_module
from repro.harness.checkpoint import CheckpointStore, _canon, job_digest
from repro.harness.pipeline import run_job
from repro.litmus import execution_to_litmus
from repro.obs import reset_observability, stats_snapshot


@pytest.fixture(scope="module")
def x86_synthesis():
    return CheckPipeline().synthesis("x86", 3)


@pytest.fixture(scope="module")
def x86_jobs(x86_synthesis):
    tests = [
        execution_to_litmus(x, f"ckpt-{i}")
        for i, x in enumerate(x86_synthesis.forbidden + x86_synthesis.allowed)
    ]
    return [
        ("observable", "x86", t.program, t.intended_co) for t in tests
    ]


# ---------------------------------------------------------------------------
# Digest stability
# ---------------------------------------------------------------------------


def test_digest_is_deterministic_per_process(x86_jobs):
    assert [job_digest(j) for j in x86_jobs] == [
        job_digest(j) for j in x86_jobs
    ]


def test_digest_distinguishes_jobs(x86_jobs):
    digests = {job_digest(j) for j in x86_jobs}
    assert len(digests) == len(x86_jobs)


def test_digest_distinguishes_kind_and_model(x86_synthesis):
    x = x86_synthesis.forbidden[0]
    assert job_digest(("consistent", "x86tm", (), x)) != job_digest(
        ("violated", "x86tm", (), x)
    )
    assert job_digest(("consistent", "x86tm", (), x)) != job_digest(
        ("consistent", "x86", (), x)
    )
    assert job_digest(("consistent", "x86tm", (), x)) != job_digest(
        ("consistent", "x86tm", ("TxnOrder",), x)
    )


def test_canon_rejects_unknown_objects():
    with pytest.raises(TypeError):
        _canon(object())


_SEED_SNIPPET = """
import sys
sys.path.insert(0, "src")
from repro.enumeration import enumerate_executions, get_config
from repro.harness.checkpoint import job_digest
config = get_config("x86")
for i, x in enumerate(enumerate_executions(config, 2)):
    print(job_digest(("consistent", "x86tm", (), x)))
    if i >= 9:
        break
"""


@pytest.mark.parametrize("seed", ["1", "2"])
def test_digest_stable_across_hash_seeds(seed):
    """The digest survives hash randomisation -- the property that makes
    cross-run resume sound (``hash()``/set iteration order do not)."""
    runs = [
        subprocess.run(
            [sys.executable, "-c", _SEED_SNIPPET],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent.parent,
            env={"PYTHONHASHSEED": s, "PATH": "/usr/bin:/bin"},
        ).stdout
        for s in ("0", seed)
    ]
    assert runs[0] == runs[1]
    assert runs[0].strip()


# ---------------------------------------------------------------------------
# The JSONL store
# ---------------------------------------------------------------------------


def test_store_roundtrip_and_reload(tmp_path):
    path = tmp_path / "store.jsonl"
    store = CheckpointStore(path)
    assert store.loaded == 0
    store.record("d1", True, kind="observable")
    store.record("d2", ["TxnOrder"], kind="violated")
    store.close()

    reloaded = CheckpointStore(path)
    assert reloaded.loaded == 2
    assert "d1" in reloaded and reloaded.get("d1") is True
    assert reloaded.get("d2") == ["TxnOrder"]
    assert "d3" not in reloaded


def test_store_tolerates_truncated_last_line(tmp_path):
    """A crash mid-append leaves a half-written record; reload drops it
    (that job simply re-runs) instead of failing."""
    path = tmp_path / "store.jsonl"
    store = CheckpointStore(path)
    store.record("d1", True)
    store.record("d2", False)
    store.close()
    text = path.read_text()
    path.write_text(text + '{"digest": "d3", "kin')  # torn write

    reloaded = CheckpointStore(path)
    assert len(reloaded) == 2
    assert "d3" not in reloaded
    # The store stays appendable after a torn tail.
    reloaded.record("d4", True)
    reloaded.close()
    assert len(CheckpointStore(path)) == 3


def test_store_tolerates_blank_lines(tmp_path):
    path = tmp_path / "store.jsonl"
    path.write_text('\n{"digest": "d1", "kind": "job", "result": 7}\n\n')
    assert CheckpointStore(path).get("d1") == 7


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------

_BOMB_FUSE = {"remaining": None}


def _bomb_run_job(job):
    """A ``run_job`` stand-in that dies after a set number of calls.

    Module-level (and counting via a module-level fuse) so the pool can
    pickle it by name; forked workers inherit the fuse and count their
    own calls, so a fan-out run also dies mid-batch.
    """
    if _BOMB_FUSE["remaining"] is not None:
        if _BOMB_FUSE["remaining"] <= 0:
            raise RuntimeError("simulated crash")
        _BOMB_FUSE["remaining"] -= 1
    return run_job(job)


@pytest.mark.parametrize("workers", [1, 2])
def test_crash_midbatch_then_resume_is_identical(
    tmp_path, monkeypatch, x86_jobs, workers
):
    """Kill the pipeline after N jobs, restart from the checkpoint, and
    the merged results are byte-identical to an uninterrupted run."""
    if workers > 1:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
    uninterrupted = CheckPipeline(workers=1).run_jobs(x86_jobs)

    path = tmp_path / f"crash-{workers}.jsonl"
    monkeypatch.setitem(_BOMB_FUSE, "remaining", len(x86_jobs) // 2)
    monkeypatch.setattr(pipeline_module, "run_job", _bomb_run_job)
    with pytest.raises(RuntimeError, match="simulated crash"):
        with CheckPipeline(workers=workers, checkpoint=path) as dying:
            dying.run_jobs(x86_jobs)

    recorded = CheckpointStore(path)
    assert 0 < len(recorded) < len(x86_jobs)

    monkeypatch.setattr(pipeline_module, "run_job", run_job)
    with CheckPipeline(workers=1, checkpoint=path) as resumed_pipe:
        resumed = resumed_pipe.run_jobs(x86_jobs)
    assert json.dumps(resumed) == json.dumps(uninterrupted)
    # and every job is now on disk, so a further resume is pure replay
    with CheckPipeline(workers=1, checkpoint=path) as replay_pipe:
        assert json.dumps(replay_pipe.run_jobs(x86_jobs)) == json.dumps(
            uninterrupted
        )


def _row_tuples(table):
    return [
        (
            row.events,
            row.forbid_total,
            row.forbid_seen,
            row.allow_total,
            row.allow_seen,
        )
        for row in table.rows
    ]


def test_table1_killed_and_resumed_matches_uninterrupted(
    tmp_path, monkeypatch, x86_synthesis
):
    """The acceptance criterion: a Table 1 run killed mid-batch and
    restarted from its checkpoint produces identical verdicts, and the
    stats snapshot shows nonzero cache hit rates and stage timings."""
    uninterrupted = run_table1("x86", 3, synthesis=x86_synthesis)

    path = tmp_path / "table1.jsonl"
    monkeypatch.setitem(_BOMB_FUSE, "remaining", 5)
    monkeypatch.setattr(pipeline_module, "run_job", _bomb_run_job)
    with pytest.raises(RuntimeError, match="simulated crash"):
        run_table1("x86", 3, synthesis=x86_synthesis, checkpoint=path)
    assert len(CheckpointStore(path)) > 0

    monkeypatch.setattr(pipeline_module, "run_job", run_job)
    reset_observability()
    resumed = run_table1("x86", 3, synthesis=x86_synthesis, checkpoint=path)
    assert _row_tuples(resumed) == _row_tuples(uninterrupted)
    assert resumed.unseen_allow_total == uninterrupted.unseen_allow_total

    stats = stats_snapshot()
    assert stats["hit_rates"].get("pipeline.checkpoint", 0) > 0
    job_timer = stats["timers"]["pipeline.job.seconds"]
    assert job_timer["count"] > 0 and job_timer["total"] > 0
    assert stats["timers"]["pipeline.batch.seconds"]["count"] > 0
