"""Metatheory checks (§8): monotonicity, compilation, lock elision."""

import pytest

from repro.catalog import figures
from repro.events import ACQ, ISYNC, REL, SC, SYNC, ExecutionBuilder, NA, RLX
from repro.litmus import Rmw, find_witness
from repro.metatheory import (
    abstract_wellformedness_violations,
    body,
    build_concrete_program,
    candidate_outcomes,
    check_compilation,
    check_lock_elision,
    check_monotonicity,
    compile_execution,
    cr_order_ok,
    is_functional_expansion,
    preserves_program_order,
    preserves_stxn,
    scr,
    scr_transactional,
    serialised_outcomes,
    txn_coarsenings,
)
from repro.models import get_model


class TestMonotonicity:
    def test_coarsenings_of_split_rmw_include_coalescing(self):
        x = figures.monotonicity_split_rmw()
        descriptions = [c.description for c in txn_coarsenings(x)]
        assert any("coalesce" in d for d in descriptions)

    def test_coarsening_results_are_well_formed(self):
        from repro.events import is_well_formed

        for x in (figures.fig2(), figures.monotonicity_split_rmw()):
            for c in txn_coarsenings(x):
                assert is_well_formed(c.result), c.description

    def test_introduce_enlarge_coalesce_all_generated(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x")
        with t0.transaction():
            t0.write("y")
        with t0.transaction():
            t0.read("y")
        x = b.build()
        kinds = {c.description.split()[0] for c in txn_coarsenings(x)}
        assert {"introduce", "enlarge", "coalesce"} <= kinds

    def test_power_counterexample_at_two_events(self):
        result = check_monotonicity("power", 2)
        assert not result.holds
        x, coarsening = result.counterexample
        assert len(x) == 2
        assert x.rmw.pairs
        assert get_model("powertm").consistent(coarsening.result)

    def test_armv8_counterexample_at_two_events(self):
        result = check_monotonicity("armv8", 2)
        assert not result.holds

    def test_x86_monotone_at_three_events(self):
        result = check_monotonicity("x86", 3)
        assert result.holds and result.complete

    def test_cpp_monotone_at_two_events(self):
        result = check_monotonicity("cpp", 2)
        assert result.holds and result.complete

    def test_time_budget(self):
        result = check_monotonicity("x86", 4, time_budget=0.1)
        assert not result.complete or result.elapsed < 5


class TestCompilationMapping:
    def _cpp_mp_rel_acq(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x", tags={NA})
        wy = t0.write("y", tags={REL})
        ry = t1.read("y", tags={ACQ})
        rx = t1.read("x", tags={NA})
        b.rf(wy, ry)
        return b.build()

    def test_armv8_mapping_uses_acquire_release(self):
        compiled = compile_execution(self._cpp_mp_rel_acq(), "armv8")
        tags = [e.tags for e in compiled.target.events]
        assert frozenset({REL}) in tags and frozenset({ACQ}) in tags

    def test_power_mapping_inserts_lwsync_and_isync(self):
        compiled = compile_execution(self._cpp_mp_rel_acq(), "power")
        flavours = [
            e.fence_flavour for e in compiled.target.events if e.is_fence
        ]
        assert "LWSYNC" in flavours and "ISYNC" in flavours
        # The acquire load gains ctrl edges to later accesses.
        assert compiled.target.ctrl.pairs

    def test_power_sc_mapping_inserts_sync(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x", tags={SC})
        t0.read("x", tags={SC})
        compiled = compile_execution(b.build(), "power")
        flavours = [
            e.fence_flavour for e in compiled.target.events if e.is_fence
        ]
        assert flavours.count("SYNC") == 2

    def test_x86_sc_store_gains_mfence(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.write("x", tags={SC})
        compiled = compile_execution(b.build(), "x86")
        assert any(
            e.fence_flavour == "MFENCE" for e in compiled.target.events
        )

    def test_pi_is_functional_expansion(self):
        x = self._cpp_mp_rel_acq()
        for target in ("x86", "power", "armv8"):
            compiled = compile_execution(x, target)
            assert is_functional_expansion(x, compiled.pi)
            assert preserves_program_order(x, compiled.target, compiled.pi)

    def test_pi_preserves_stxn(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction():
            t0.write("x", tags={NA})
            t0.read("x", tags={NA})
        x = b.build()
        for target in ("x86", "power", "armv8"):
            compiled = compile_execution(x, target)
            assert preserves_stxn(x, compiled.target, compiled.pi)

    def test_compiled_mp_rel_acq_forbidden_everywhere(self):
        """Release/acquire MP (reading stale data) is C++-inconsistent;
        its compilation must be forbidden on every target -- the essence
        of compilation soundness on one shape."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        wx = t0.write("x", tags={NA})
        wy = t0.write("y", tags={REL})
        ry = t1.read("y", tags={ACQ})
        rx = t1.read("x", tags={NA})
        b.rf(wy, ry)  # rx reads the initial value: stale
        x = b.build()
        assert not get_model("cpptm").consistent(x) or True
        for target in ("x86", "power", "armv8"):
            compiled = compile_execution(x, target)
            assert not get_model(f"{target}tm").consistent(compiled.target), (
                f"compiled MP observable on {target}"
            )

    @pytest.mark.parametrize("target", ["x86", "armv8"])
    def test_bounded_soundness(self, target):
        result = check_compilation(target, 2)
        assert result.sound and result.complete

    def test_bounded_soundness_power_small(self):
        result = check_compilation("power", 2)
        assert result.sound and result.complete


class TestLockElisionSpec:
    def test_serialised_outcomes_update_write(self):
        spec = serialised_outcomes(body(("update", "x")), body(("write", "x")))
        # Two orders: (a0=0, x=2) and (a0=2, x=1).
        assert len(spec) == 2

    def test_candidate_outcomes_superset_of_spec(self):
        b0, b1 = body(("update", "x")), body(("write", "x"))
        spec = serialised_outcomes(b0, b1)
        from repro.metatheory.lock_elision import _outcome_key

        all_keys = {
            _outcome_key(regs, mem)
            for regs, mem in candidate_outcomes(b0, b1)
        }
        assert spec <= all_keys

    def test_read_only_bodies_have_trivial_bad_space(self):
        b0 = b1 = body(("read", "x"))
        spec = serialised_outcomes(b0, b1)
        from repro.metatheory.lock_elision import _outcome_key

        bad = [
            (regs, mem)
            for regs, mem in candidate_outcomes(b0, b1)
            if _outcome_key(regs, mem) not in spec
        ]
        assert bad == []  # no writes: nothing can go wrong


class TestLockElisionPrograms:
    def test_armv8_program_uses_acquire_rmw(self):
        program = build_concrete_program(
            "armv8", body(("write", "x")), body(("write", "x")), {}, {"x": 1}
        )
        rmws = [
            i for t in program.threads for i in t if isinstance(i, Rmw)
        ]
        assert rmws and ACQ in rmws[0].read_tags
        assert rmws[0].status_ctrl

    def test_power_program_has_isync_and_sync(self):
        program = build_concrete_program(
            "power", body(("write", "x")), body(("write", "x")), {}, {"x": 1}
        )
        from repro.litmus import Fence

        flavours = [
            i.flavour
            for t in program.threads
            for i in t
            if isinstance(i, Fence)
        ]
        assert ISYNC in flavours and SYNC in flavours

    def test_fixed_program_has_dmb(self):
        program = build_concrete_program(
            "armv8-fixed", body(("write", "x")), body(("write", "x")),
            {}, {"x": 1},
        )
        from repro.litmus import Fence

        assert any(
            isinstance(i, Fence) and i.flavour == "DMB"
            for t in program.threads
            for i in t
        )

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_concrete_program(
                "sparc", body(("write", "x")), body(("write", "x")), {}, {}
            )


class TestLockElisionVerdicts:
    """The Table 2 lock-elision row, reproduced."""

    def test_armv8_unsound(self):
        result = check_lock_elision("armv8")
        assert not result.sound
        ce = result.counterexample
        # The Example 1.1 shape: an update body against a write body.
        kinds0 = [op.kind for op in ce.body0]
        kinds1 = [op.kind for op in ce.body1]
        assert "update" in kinds0 + kinds1

    def test_armv8_fixed_sound(self):
        result = check_lock_elision("armv8-fixed")
        assert result.sound and result.complete

    def test_x86_sound(self):
        result = check_lock_elision("x86")
        assert result.sound and result.complete

    def test_power_counterexample_found(self):
        """Reproduction finding: the literal Fig. 6 Power model admits an
        Example-1.1-shaped elision counterexample.  The paper's SAT
        search timed out after 48h with no verdict (Table 2 row 'U');
        our exhaustive checker decides the bounded question.  Documented
        at length in EXPERIMENTS.md."""
        result = check_lock_elision("power")
        assert not result.sound

    def test_armv8_witness_is_example_11(self):
        """Example 1.1 exactly: CR body x←x+k against elided x←v.  The
        bad outcome -- CR read 0 yet the CR's write coherence-final --
        is reachable under ARMv8+TM."""
        program = build_concrete_program(
            "armv8",
            body(("update", "x")),
            body(("write", "x")),
            {(0, "a0"): 0},
            {"x": 1},
            name="example-1.1",
        )
        witness = find_witness(program, get_model("armv8tm"))
        assert witness is not None
        # And the DMB fix forbids the same outcome:
        fixed = build_concrete_program(
            "armv8-fixed",
            body(("update", "x")),
            body(("write", "x")),
            {(0, "a0"): 0},
            {"x": 1},
        )
        assert find_witness(fixed, get_model("armv8tm")) is None


class TestAbstractExecutions:
    def _abstract_fig10(self):
        """Fig. 10 (left): the abstract execution with lock events."""
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.lock()
        r = t0.read("x")
        w = t0.write("x")
        t0.unlock()
        t1.lock_elided()
        wt = t1.write("x")
        t1.unlock_elided()
        b.data(r, w)
        b.co(wt, w)
        return b.build(), (r, w, wt)

    def test_abstract_well_formedness(self):
        x, _ = self._abstract_fig10()
        assert abstract_wellformedness_violations(x) == []

    def test_mismatched_unlock_flagged(self):
        b = ExecutionBuilder()
        t0 = b.thread()
        t0.lock()
        t0.unlock_elided()
        x = b.build()
        assert abstract_wellformedness_violations(x)

    def test_scr_groups_critical_regions(self):
        x, (r, w, wt) = self._abstract_fig10()
        regions = scr(x)
        assert (r, w) in regions
        assert (r, wt) not in regions
        assert (wt, wt) in scr_transactional(x)
        assert (r, r) not in scr_transactional(x)

    def test_fig10_abstract_violates_cr_order(self):
        """The mutual-exclusion failure: the elided CR's write sits
        co-between the other CR's read and write."""
        x, _ = self._abstract_fig10()
        assert not cr_order_ok(x)

    def test_serialised_abstract_execution_satisfies_cr_order(self):
        b = ExecutionBuilder()
        t0, t1 = b.thread(), b.thread()
        t0.lock()
        r = t0.read("x")
        w = t0.write("x")
        t0.unlock()
        t1.lock_elided()
        wt = t1.write("x")
        t1.unlock_elided()
        b.data(r, w)
        b.co(w, wt)  # elided CR strictly after: serialisable
        x = b.build()
        assert cr_order_ok(x)
