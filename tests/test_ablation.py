"""The axiom-ablation harness: per-axiom attribution of Forbid tests."""

import pytest

from repro.enumeration import synthesise
from repro.harness.ablation import run_ablation


@pytest.fixture(scope="module")
def x86_ablation():
    return run_ablation("x86", synthesis=synthesise("x86", 3))


def test_every_test_attributed(x86_ablation):
    assert x86_ablation.total_tests == 4
    attributed = (
        sum(x86_ablation.sole_catcher_counts.values())
        + x86_ablation.never_escaping
    )
    # Tests with several escaping axioms are rare at this bound; every
    # test is either solely caught or redundantly caught.
    assert attributed <= x86_ablation.total_tests


def test_isolation_axioms_dominate_small_x86_suite(x86_ablation):
    """The 3-event x86 Forbid tests are the Fig. 3 shapes: all caught by
    StrongIsol."""
    assert x86_ablation.violation_counts.get("StrongIsol", 0) == 4


def test_power_ablation_attributes_txn_cancels_rmw():
    result = run_ablation("power", synthesis=synthesise("power", 2))
    assert result.total_tests == 2
    assert result.sole_catcher_counts.get("TxnCancelsRMW", 0) == 2


def test_render(x86_ablation):
    out = x86_ablation.render()
    assert "Axiom ablation" in out and "StrongIsol" in out
