"""The lowered cat path: one AST→IR lowering per parsed model, running
on the shared planner/executor.

``tests/test_cat_models_agree.py`` pins the lowered evaluator's
verdicts against the native models; these tests pin the *lowering*
itself -- plan sharing, hash-cons unification with the Python twins,
static classification, ``static:`` interning/adoption, let-rec kinds,
and error behaviour.
"""

from __future__ import annotations

import pytest

from repro import ir
from repro.cat import load_cat_model, parse
from repro.cat.eval import CatModel, _compile_model
from repro.events import ExecutionBuilder
from repro.models import get_model


def _execution():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    r = t1.read("x")
    b.rf(w, r)
    return b.build()


def test_compilation_shared_across_instances():
    """Loading the same bundled model twice reuses one lowered plan
    (and therefore one term DAG and one per-execution cache space)."""
    first = load_cat_model("powertm")
    second = load_cat_model("powertm")
    assert first.plan() is second.plan()


def test_distinct_models_get_distinct_plans():
    a = CatModel(parse('"m" let s = po acyclic s as A'))
    b = CatModel(parse('"m" let s = po | poloc acyclic s as A'))
    assert a.plan() is not b.plan()


def test_cat_twin_terms_unify_with_python_models():
    """Hash-consing makes the two encodings *literally share terms*:
    the cat SC model's ``po | com`` is the same object as the Python
    ``SCModel``'s, so their per-execution values and Order verdicts can
    never diverge -- agreement is structural, not coincidental."""
    cat_plan = load_cat_model("sc").plan()
    native_plan = get_model("sc").plan()
    assert cat_plan is not native_plan
    assert cat_plan.constraints[0].term is native_plan.constraints[0].term
    # ...and the shared (kind, term) pair shares one verdict-memo key.
    assert cat_plan.constraints[0].vkey == native_plan.constraints[0].vkey


def test_static_classification():
    """Bindings over skeleton-static identifiers lower to static terms;
    anything touching rf/co-derived relations is dynamic.  Staticness
    flows through earlier static bindings."""
    plan = _compile_model(
        parse(
            '"m" '
            "let fences = sync | lwsync "
            "let ord = fences | po "
            "let obs = rf | co "
            "let mixed = ord | obs "
            "acyclic fences as A "
            "acyclic ord as B "
            "acyclic obs as C "
            "acyclic mixed as D"
        )
    )
    flags = {c.name: c.term.static for c in plan.constraints}
    assert flags == {"A": True, "B": True, "C": False, "D": False}


def test_dynamic_shadowing_revokes_staticness():
    """A dynamic let shadowing a static name (here the builtin sloc)
    makes later readers of that name dynamic: their values depend on
    rf/co and must not be interned under a static: key."""
    plan = _compile_model(
        parse('"m" let sloc = rf | co let q = sloc acyclic q as A')
    )
    (constraint,) = plan.constraints
    assert not constraint.term.static
    assert constraint.term.skey is None


def test_static_bindings_interned_per_execution():
    """A static binding's value lands in the execution's
    RelationContext under its term's mechanical ``static:ir.n{uid}``
    key, and is reused by any other model whose lowering produced the
    same hash-consed term.  (The closure keeps it above the intern cost
    floor; trivially cheap static terms are recomputed instead.)"""
    source = '"m" let ord = (po | poloc)+ acyclic ord | rf as A'
    x = _execution()
    cat = CatModel(parse(source))
    assert cat.consistent(x)
    (constraint,) = cat.plan().constraints
    static_roots = [
        t
        for t in constraint.term.args
        if t.static and t.intern_root
    ]
    assert static_roots, "the static part of the axiom must be hoisted"
    for term in static_roots:
        assert term.skey.startswith("static:ir.")
        assert term.skey in x.context._cache


def test_static_bindings_adopted_across_completions():
    """Completions of one skeleton share the static cat bindings through
    ``Execution.adopt_skeleton_caches`` -- same mechanism, same keys, as
    the native models' static subterms."""
    cat = CatModel(parse('"m" let ord = (po | poloc)+ acyclic ord | rf as A'))
    template = _execution()
    assert cat.consistent(template)
    (constraint,) = cat.plan().constraints
    keys = [
        t.skey for t in constraint.term.args if t.static and t.intern_root
    ]
    assert keys
    sibling = _execution().adopt_skeleton_caches(template)
    for key in keys:
        assert key in sibling.context._cache
        assert sibling.context._cache[key] is template.context._cache[key]


def test_letrec_lowers_to_fix_group():
    """A ``let rec`` group lowers to one IR fixpoint group, shared by
    hash-consing across equal ASTs (the Power ppo recursion's cache)."""
    source = (
        '"m" let rec ii = rfi | ci and ci = ii ; po '
        "acyclic ii as A irreflexive ci as B"
    )
    plan_a = _compile_model(parse(source))
    plan_b = _compile_model(parse(source.replace('"m"', '"m2"')))
    a_ii, a_ci = (c.term for c in plan_a.constraints)
    assert a_ii.op == "fix" and a_ci.op == "fix"
    assert a_ii.group is a_ci.group
    b_ii = plan_b.constraints[0].term
    assert b_ii is a_ii  # same bodies → same hash-consed group


def test_letrec_seeds_set_kind():
    """Set-valued let-rec bindings are seeded from the empty set (same
    kind inference as the AST-walking evaluator), so a recursive *set*
    definition lowers and runs without a spurious type error."""
    cat = CatModel(
        parse(
            '"m" let rec obs = W | range([obs] ; rf) '
            "empty [obs] & (rf | rf^-1) as NoSelf"
        )
    )
    x = _execution()
    assert cat.consistent(x)


def test_lowering_errors_match_evaluator():
    """Lowering raises the same cat errors, with the same messages, as
    the walker -- now at model-construction time instead of first use."""
    from repro.cat import CatNameError, CatTypeError

    with pytest.raises(CatNameError, match="undefined identifier 'nonsense'"):
        CatModel(parse('"m" acyclic nonsense as A'))
    with pytest.raises(CatNameError, match="undefined function 'frob'"):
        CatModel(parse('"m" acyclic frob(po) as A'))
    with pytest.raises(CatTypeError, match="; needs a relation, got a set"):
        CatModel(parse('"m" acyclic W ; R as A'))
    with pytest.raises(CatTypeError, match="union of a set and a relation"):
        CatModel(parse('"m" acyclic W | po as A'))
    with pytest.raises(CatTypeError, match="needs a set, got a relation"):
        CatModel(parse('"m" acyclic [po] as A'))
    with pytest.raises(CatTypeError, match="acyclic needs a relation, got a set"):
        CatModel(parse('"m" acyclic W as A'))


def test_failed_axioms_reported_by_name():
    """Diagnostics come straight from the executor's per-constraint
    verdicts: the lowered model names the failed axioms exactly."""
    cat = CatModel(
        parse('"m" acyclic po | com as Order empty rf as NoReads')
    )
    x = _execution()
    assert cat.violated_axioms(x) == ["NoReads"]
    assert [name for name, _ in cat.axiom_thunks(x)] == ["Order", "NoReads"]
