"""The compiled cat path: one compilation per parsed model, and
skeleton-static bindings interned through the ``static:`` context keys.

``tests/test_cat_models_agree.py`` pins the compiled evaluator's
verdicts against the native models; these tests pin its *caching*
behaviour.
"""

from __future__ import annotations

import pytest

from repro.cat import load_cat_model, parse
from repro.cat.eval import (
    CatModel,
    _CompiledLet,
    _CompiledRun,
    _compile_model,
)
from repro.events import ExecutionBuilder
from repro.relations import Relation


def _execution():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    w = t0.write("x")
    r = t1.read("x")
    b.rf(w, r)
    return b.build()


def test_compilation_shared_across_instances():
    """Loading the same bundled model twice reuses one compiled program
    (and therefore one static-cache namespace)."""
    first = load_cat_model("powertm")
    second = load_cat_model("powertm")
    assert first._steps is second._steps
    assert first._namespace == second._namespace


def test_distinct_models_get_distinct_namespaces():
    a = CatModel(parse('"m" let s = po acyclic s as A'))
    b = CatModel(parse('"m" let s = po | poloc acyclic s as A'))
    assert a._namespace != b._namespace


def test_static_classification():
    """Bindings over skeleton-static identifiers are classified static;
    anything touching rf/co-derived relations is not.  Staticness flows
    through earlier static bindings."""
    model = parse(
        '"m" '
        "let fences = sync | lwsync "
        "let ord = fences | po "
        "let obs = rf | co "
        "let mixed = ord | obs "
        "acyclic mixed as A"
    )
    steps, _ = _compile_model(model)
    lets = [s for s in steps if isinstance(s, _CompiledLet)]
    flags = {let.bindings[0].name: let.static for let in lets}
    assert flags == {
        "fences": True,
        "ord": True,
        "obs": False,
        "mixed": False,
    }


def test_dynamic_shadowing_revokes_staticness():
    """A dynamic let shadowing a static name (here the builtin sloc)
    makes later readers of that name dynamic: their values depend on
    rf/co and must not be interned under a static: key."""
    model = parse(
        '"m" let sloc = rf | co let q = sloc acyclic q as A'
    )
    steps, _ = _compile_model(model)
    lets = [s for s in steps if isinstance(s, _CompiledLet)]
    flags = {let.bindings[0].name: let.static for let in lets}
    assert flags == {"sloc": False, "q": False}


def test_static_bindings_interned_per_execution():
    """A static let's values land in the execution's RelationContext
    under a ``static:`` key (the prefix the skeleton cache-adoption
    machinery shares across rf/co completions), and a second run -- even
    from a distinct CatModel instance over the same AST -- reuses them
    without re-evaluating."""
    source = '"m" let ord = po | poloc let com2 = rf | co acyclic ord | com2 as A'
    x = _execution()
    cat = CatModel(parse(source))
    assert cat.consistent(x)
    static_keys = [
        k for k in x.context._cache if k.startswith(f"static:{cat._namespace}")
    ]
    assert len(static_keys) == 1
    cached = x.context._cache[static_keys[0]]
    assert set(cached) == {"ord"}
    assert isinstance(cached["ord"], Relation)

    # Second run over the same execution: the static let must not be
    # re-evaluated.
    calls = {"n": 0}
    original = _CompiledRun._eval_let

    def counting(self, step):
        calls["n"] += 1
        return original(self, step)

    _CompiledRun._eval_let = counting
    try:
        again = CatModel(parse(source))
        assert again.consistent(x)
    finally:
        _CompiledRun._eval_let = original
    # Only the dynamic let (com2) was re-evaluated.
    assert calls["n"] == 1


def test_static_bindings_adopted_across_completions():
    """Completions of one skeleton share the static cat bindings through
    ``Execution.adopt_skeleton_caches`` -- same mechanism as the native
    models' ``static:`` relations."""
    cat = CatModel(parse('"m" let ord = po | poloc acyclic ord | rf as A'))
    template = _execution()
    assert cat.consistent(template)
    key = f"static:{cat._namespace}.let0"
    assert key in template.context._cache

    sibling = _execution().adopt_skeleton_caches(template)
    assert key in sibling.context._cache
    assert (
        sibling.context._cache[key] is template.context._cache[key]
    )


def test_compiled_letrec_seeds_set_kind():
    """The compiled let-rec path seeds set-valued bindings from the
    empty set (same fix as the AST-walking evaluator)."""
    cat = CatModel(
        parse(
            '"m" let rec obs = W | range([obs] ; rf) '
            "empty [obs] & (rf | rf^-1) as NoSelf"
        )
    )
    x = _execution()
    assert cat.consistent(x)


def test_compiled_error_messages_match_evaluator():
    """The compiled closures raise the same cat errors as the walker."""
    from repro.cat import CatNameError, CatTypeError

    x = _execution()
    with pytest.raises(CatNameError, match="nonsense"):
        CatModel(parse('"m" acyclic nonsense as A')).consistent(x)
    with pytest.raises(CatNameError, match="frob"):
        CatModel(parse('"m" acyclic frob(po) as A')).consistent(x)
    with pytest.raises(CatTypeError):
        CatModel(parse('"m" acyclic W ; R as A')).consistent(x)
    with pytest.raises(CatTypeError):
        CatModel(parse('"m" acyclic W | po as A')).consistent(x)
    with pytest.raises(CatTypeError):
        CatModel(parse('"m" acyclic [po] as A')).consistent(x)
