"""Litmus programs, conversion, candidates, and rendering (§2.2, §3.2)."""

import pytest

from repro.catalog import classics, figures
from repro.events import ACQ, MFENCE, REL
from repro.litmus import (
    AbortUnless,
    Fence,
    Load,
    LoadLinked,
    MemEquals,
    Postcondition,
    Program,
    RegEquals,
    Rmw,
    Store,
    StoreConditional,
    TxBegin,
    TxEnd,
    TxnsSucceeded,
    allowed,
    candidate_executions,
    execution_to_litmus,
    find_witness,
    render,
)
from repro.models import get_model


class TestProgramValidation:
    def test_undefined_register_dependency(self):
        with pytest.raises(ValueError, match="undefined register"):
            Program(
                "bad",
                ((Store("x", 1, data_regs=("r0",)),),),
                Postcondition(()),
            )

    def test_register_redefinition(self):
        with pytest.raises(ValueError, match="redefined"):
            Program(
                "bad",
                ((Load("r0", "x"), Load("r0", "y")),),
                Postcondition(()),
            )

    def test_nested_transactions_rejected(self):
        with pytest.raises(ValueError, match="nested"):
            Program(
                "bad",
                ((TxBegin(), TxBegin(), TxEnd(), TxEnd()),),
                Postcondition(()),
            )

    def test_unterminated_transaction(self):
        with pytest.raises(ValueError, match="unterminated"):
            Program("bad", ((TxBegin(), Store("x", 1)),), Postcondition(()))

    def test_store_conditional_needs_load_linked(self):
        with pytest.raises(ValueError, match="load-linked"):
            Program(
                "bad",
                ((StoreConditional("x", 1, link="r0"),),),
                Postcondition(()),
            )

    def test_abort_unless_outside_txn(self):
        with pytest.raises(ValueError, match="outside transaction"):
            Program(
                "bad",
                ((Load("r0", "m"), AbortUnless("r0", 0)),),
                Postcondition(()),
            )

    def test_distinct_value_warnings(self):
        p = Program(
            "warn",
            ((Store("x", 1), Store("x", 1), Store("y", 0)),),
            Postcondition(()),
        )
        warnings = p.distinct_value_warnings()
        assert any("reuse" in w for w in warnings)
        assert any("initial value" in w for w in warnings)

    def test_locations_and_txn_count(self):
        p = Program(
            "ok",
            (
                (TxBegin(), Store("x", 1), TxEnd()),
                (Load("r0", "y"),),
            ),
            Postcondition(()),
        )
        assert p.locations == ("x", "y")
        assert p.transaction_count() == 1


class TestPostcondition:
    def test_atoms(self):
        post = Postcondition(
            (RegEquals(0, "r0", 1), MemEquals("x", 2), TxnsSucceeded())
        )
        assert post.holds({(0, "r0"): 1}, {"x": 2}, True)
        assert not post.holds({(0, "r0"): 0}, {"x": 2}, True)
        assert not post.holds({(0, "r0"): 1}, {"x": 0}, True)
        assert not post.holds({(0, "r0"): 1}, {"x": 2}, False)

    def test_missing_values_default_to_zero(self):
        post = Postcondition((RegEquals(0, "r0", 0), MemEquals("x", 0)))
        assert post.holds({}, {})

    def test_conjunction_operator(self):
        post = Postcondition((RegEquals(0, "r0", 1),)) & Postcondition(
            (MemEquals("x", 1),)
        )
        assert len(post.atoms) == 2

    def test_str(self):
        post = Postcondition((RegEquals(0, "r0", 1), TxnsSucceeded()))
        assert str(post) == "0:r0 = 1 /\\ ok = 1"
        assert str(Postcondition(())) == "true"


class TestConversion:
    def test_fig1_structure(self):
        test = execution_to_litmus(figures.fig1(), "fig1")
        program = test.program
        assert program.transaction_count() == 0
        # Two writes to x with distinct values increasing along co.
        stores = [
            i for t in program.threads for i in t if isinstance(i, Store)
        ]
        assert sorted(s.value for s in stores) == [1, 2]
        # The read observes the co-later write (value 2).
        assert RegEquals(0, "r0", 2) in program.postcondition.atoms
        assert MemEquals("x", 2) in program.postcondition.atoms
        assert test.co_fully_pinned

    def test_fig2_gains_txn_markers_and_ok(self):
        test = execution_to_litmus(figures.fig2(), "fig2")
        thread0 = test.program.threads[0]
        assert isinstance(thread0[0], TxBegin)
        assert isinstance(thread0[-1], TxEnd)
        assert TxnsSucceeded() in test.program.postcondition.atoms

    def test_rmw_pair_collapses(self):
        test = execution_to_litmus(figures.fig10_concrete(), "fig10")
        thread0 = test.program.threads[0]
        assert any(isinstance(i, Rmw) for i in thread0)

    def test_split_rmw_across_txn_boundary(self):
        test = execution_to_litmus(
            figures.monotonicity_split_rmw(), "split"
        )
        instrs = [i for t in test.program.threads for i in t]
        assert any(isinstance(i, LoadLinked) for i in instrs)
        assert any(isinstance(i, StoreConditional) for i in instrs)

    def test_dependencies_become_register_annotations(self):
        test = execution_to_litmus(classics.mp(dep="addr"), "mp+addr")
        loads = [
            i for t in test.program.threads for i in t if isinstance(i, Load)
        ]
        assert any(l.addr_regs for l in loads)

    def test_fences_preserved(self):
        test = execution_to_litmus(classics.sb("mfence"), "sb+mf")
        fences = [
            i for t in test.program.threads for i in t if isinstance(i, Fence)
        ]
        assert len(fences) == 2
        assert all(f.flavour == MFENCE for f in fences)

    def test_intended_co(self):
        test = execution_to_litmus(figures.fig1(), "fig1")
        assert test.intended_co == {"x": (1, 2)}

    def test_footnote2_flag(self):
        from repro.events import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        w3 = t0.write("x")
        b.co(w1, w2, w3)
        x = b.build()
        test = execution_to_litmus(x, "threewrites")
        assert not test.co_fully_pinned

    def test_generated_values_distinct(self):
        for factory in (classics.sb, classics.mp, figures.fig2):
            test = execution_to_litmus(factory(), "t")
            assert test.program.distinct_value_warnings() == []


class TestCandidates:
    def test_sb_candidate_count(self):
        test = execution_to_litmus(classics.sb(), "sb")
        # 2 reads × (1 write + init) each = 4 candidates; one write per
        # location so co is trivial.
        assert len(list(candidate_executions(test.program))) == 4

    def test_txn_commit_subsets(self):
        test = execution_to_litmus(figures.fig2(), "fig2")
        committed = {
            c.committed for c in candidate_executions(test.program)
        }
        assert frozenset() in committed and frozenset({0}) in committed

    def test_require_all_txns(self):
        test = execution_to_litmus(figures.fig2(), "fig2")
        for c in candidate_executions(test.program, require_all_txns=True):
            assert c.all_txns_committed

    def test_round_trip_verdicts(self):
        cases = [
            (classics.sb(), "x86", True),
            (classics.sb(), "sc", False),
            (classics.sb("mfence"), "x86", False),
            (classics.mp(), "power", True),
            (classics.mp(fence="lwsync", dep="addr"), "power", False),
            (figures.fig2(), "x86tm", False),
            (figures.fig10_concrete(), "armv8tm", True),
            (figures.fig10_concrete_fixed(), "armv8tm", False),
        ]
        for x, model_name, expected in cases:
            test = execution_to_litmus(x, "t")
            assert allowed(test.program, get_model(model_name)) == expected

    def test_witness_satisfies_postcondition(self):
        test = execution_to_litmus(classics.sb(), "sb")
        witness = find_witness(test.program, get_model("x86"))
        assert witness is not None
        assert witness.candidate.passes(test.program)

    def test_abort_unless_constrains_committed_candidates(self):
        program = Program(
            "abort",
            (
                (TxBegin(), Load("r0", "m"), AbortUnless("r0", 0), TxEnd()),
                (Store("m", 1),),
            ),
            Postcondition((TxnsSucceeded(),)),
        )
        for c in candidate_executions(program):
            if c.all_txns_committed:
                assert c.registers[(0, "r0")] == 0

    def test_vanished_load_linked_skips_skeleton(self):
        program = Program(
            "llsc",
            (
                (
                    TxBegin(),
                    LoadLinked("r0", "x"),
                    TxEnd(),
                    StoreConditional("x", 1, link="r0"),
                ),
            ),
            Postcondition(()),
        )
        for c in candidate_executions(program):
            # The only candidates are those where the transaction
            # committed (otherwise the SC could not succeed).
            assert c.committed == frozenset({0})

    def test_co_value_sequences(self):
        test = execution_to_litmus(figures.fig1(), "fig1")
        for c in candidate_executions(test.program):
            seqs = c.co_value_sequences()
            assert set(seqs["x"]) == {1, 2}


class TestRender:
    def test_all_arches_render_sb(self):
        test = execution_to_litmus(classics.sb("mfence"), "sb")
        for arch in ("pseudo", "x86", "power", "armv8", "cpp"):
            out = render(test.program, arch)
            assert "Test:" in out and "thread 1" in out

    def test_x86_opcodes(self):
        test = execution_to_litmus(classics.sb("mfence"), "sb")
        out = render(test.program, "x86")
        assert "MOV" in out and "MFENCE" in out

    def test_armv8_acquire_release(self):
        test = execution_to_litmus(classics.mp(acq_rel=True), "mp")
        out = render(test.program, "armv8")
        assert "LDAR" in out and "STLR" in out

    def test_power_fences(self):
        test = execution_to_litmus(classics.mp(fence="lwsync"), "mp")
        out = render(test.program, "power")
        assert "lwsync" in out

    def test_txn_rendering(self):
        test = execution_to_litmus(figures.fig2(), "fig2")
        assert "XBEGIN" in render(test.program, "x86")
        assert "tbegin" in render(test.program, "power")
        assert "TXBEGIN" in render(test.program, "armv8")
        assert "synchronized {" in render(test.program, "cpp")

    def test_atomic_txn_renders_as_atomic_block(self):
        program = Program(
            "atomic",
            ((TxBegin(atomic=True), Store("x", 1), TxEnd()),),
            Postcondition(()),
        )
        assert "atomic {" in render(program, "cpp")

    def test_x86_rejects_load_linked(self):
        program = Program(
            "llsc",
            ((LoadLinked("r0", "x"), StoreConditional("x", 1, link="r0")),),
            Postcondition(()),
        )
        with pytest.raises(ValueError):
            render(program, "x86")

    def test_unknown_arch(self):
        test = execution_to_litmus(classics.sb(), "sb")
        with pytest.raises(ValueError, match="unknown arch"):
            render(test.program, "sparc")

    def test_dependency_idioms(self):
        test = execution_to_litmus(classics.lb(deps=True), "lb+deps")
        out = render(test.program, "power")
        assert "xor" in out
        out = render(test.program, "armv8")
        assert "EOR" in out
