"""Rendering and postcondition round trips over *random* executions.

``test_litmus_format.py`` round-trips the hand-written catalog;
here the fuzzer's generator supplies arbitrary well-formed executions,
so the execution → litmus → text → parse chain is exercised over the
whole generated vocabulary (split rmws, transactions, every tag set),
and each architecture backend has a golden rendering pinned.
"""

from __future__ import annotations

import random

import pytest

from repro.catalog import classics
from repro.enumeration import get_config
from repro.fuzz import sample_execution
from repro.litmus import execution_to_litmus, parse_litmus, write_litmus
from repro.litmus.render import ARCHES, render

GEN_ARCHES = ("x86", "power", "armv8", "cpp", "sc")


@pytest.mark.parametrize("arch", GEN_ARCHES)
def test_random_executions_round_trip_through_litmus_text(arch):
    config = get_config(arch)
    rng = random.Random(29)
    for _ in range(20):
        x = sample_execution(rng, config, rng.randint(1, 6))
        test = execution_to_litmus(x, name=f"fuzz-{arch}")
        parsed = parse_litmus(write_litmus(test.program))
        assert parsed == test.program
        assert parsed.postcondition == test.program.postcondition


@pytest.mark.parametrize("arch", GEN_ARCHES)
def test_random_executions_render_on_every_backend(arch):
    config = get_config(arch)
    rng = random.Random(31)
    for _ in range(10):
        x = sample_execution(rng, config, rng.randint(1, 6))
        program = execution_to_litmus(x, name="fuzz").program
        for backend in ARCHES:
            text = render(program, backend)
            assert text.startswith(backend.upper())
            assert "Test:" in text


def test_render_rejects_unknown_arch():
    program = execution_to_litmus(classics.sb(), "sb").program
    with pytest.raises(ValueError):
        render(program, "sparc")


GOLDEN = {
    "pseudo": """\
PSEUDO sb
Initially: x = 0, y = 0
--- thread 0 ---
  [x] <- 1
  r0 <- [y]
--- thread 1 ---
  [y] <- 1
  r1 <- [x]
Test: 0:r0 = 0 /\\ 1:r1 = 0 /\\ x = 1 /\\ y = 1""",
    "x86": """\
X86 sb
Initially: x = 0, y = 0
--- thread 0 ---
  MOV [x], $1
  MOV EX0, [y]
--- thread 1 ---
  MOV [y], $1
  MOV EX1, [x]
Test: 0:r0 = 0 /\\ 1:r1 = 0 /\\ x = 1 /\\ y = 1""",
    "power": """\
POWER sb
Initially: x = 0, y = 0
--- thread 0 ---
  li r10,1
  stw r10,0(x)
  lwz r0,0(y)
--- thread 1 ---
  li r10,1
  stw r10,0(y)
  lwz r1,0(x)
Test: 0:r0 = 0 /\\ 1:r1 = 0 /\\ x = 1 /\\ y = 1""",
    "armv8": """\
ARMV8 sb
Initially: x = 0, y = 0
--- thread 0 ---
  MOV W10,#1
  STR W10,[x]
  LDR W0,[y]
--- thread 1 ---
  MOV W10,#1
  STR W10,[y]
  LDR W1,[x]
Test: 0:r0 = 0 /\\ 1:r1 = 0 /\\ x = 1 /\\ y = 1""",
    "cpp": """\
CPP sb
Initially: x = 0, y = 0
--- thread 0 ---
  x = 1;
  int r0 = y;
--- thread 1 ---
  y = 1;
  int r1 = x;
Test: 0:r0 = 0 /\\ 1:r1 = 0 /\\ x = 1 /\\ y = 1""",
}


@pytest.mark.parametrize("arch", sorted(GOLDEN))
def test_golden_rendering_of_store_buffering(arch):
    program = execution_to_litmus(classics.sb(), "sb").program
    assert render(program, arch) == GOLDEN[arch]


def test_postcondition_pins_the_generating_execution():
    """The generated postcondition (distinct nonzero write values) must
    hold on the final state the source execution induces, and the
    rendered text must mention every register the reads define."""
    config = get_config("x86")
    rng = random.Random(37)
    for _ in range(10):
        x = sample_execution(rng, config, rng.randint(2, 6))
        test = execution_to_litmus(x, name="pin")
        text = write_litmus(test.program)
        parsed = parse_litmus(text)
        assert parsed.postcondition.atoms == test.program.postcondition.atoms
