"""Shared fixtures: session-scoped caches of enumerated executions.

Several test modules quantify over "all well-formed executions up to a
bound"; enumerating once per session keeps the suite fast.

The autouse ``isolate_pipeline_caches`` fixture snapshots and restores
the harness's per-process hardware/model registries around every test,
and re-asserts the pre-test entries of the IR hash-cons tables, so a
test that mutates process-global state (monkeypatched machines,
dropped-axiom models, cleared or clobbered intern tables) cannot leak
into a later test -- the suite must pass in any order
(``pytest -p no:randomly`` parity).
"""

from __future__ import annotations

import pytest

from repro.enumeration import enumerate_executions, get_config
from repro.harness import pipeline as _pipeline
from repro.ir import terms as _terms


@pytest.fixture(autouse=True)
def isolate_pipeline_caches():
    """Snapshot/restore per-process caches around each test.

    The IR hash-cons tables get the *re-assert* treatment rather than a
    wholesale clear-and-restore: every entry present before the test is
    put back (same objects), so a test that clears or replaces interned
    terms cannot break pointer-identity for later tests -- but entries
    the test *added* stay, because hash-consing is monotone by design
    (plans built lazily in one test must keep sharing subterms with
    plans built in another).  ``_NEXT_UID`` is deliberately never
    rewound: reusing the uid of a still-alive term held by an lru plan
    cache would silently corrupt verdict memos keyed on uid.
    """
    hardware = dict(_pipeline._HARDWARE_CACHE)
    models = dict(_pipeline._MODEL_CACHE)
    intern_snapshot = dict(_terms._INTERN)
    fix_snapshot = dict(_terms._FIX_INTERN)
    yield
    _pipeline._HARDWARE_CACHE.clear()
    _pipeline._HARDWARE_CACHE.update(hardware)
    _pipeline._MODEL_CACHE.clear()
    _pipeline._MODEL_CACHE.update(models)
    _terms._INTERN.update(intern_snapshot)
    _terms._FIX_INTERN.update(fix_snapshot)


def _enumerate(target: str, max_events: int) -> list:
    config = get_config(target)
    out = []
    for n in range(1, max_events + 1):
        out.extend(enumerate_executions(config, n))
    return out


@pytest.fixture(scope="session")
def sc_executions_3():
    return _enumerate("sc", 3)


@pytest.fixture(scope="session")
def x86_executions_3():
    return _enumerate("x86", 3)


@pytest.fixture(scope="session")
def power_executions_3():
    return _enumerate("power", 3)


@pytest.fixture(scope="session")
def armv8_executions_3():
    return _enumerate("armv8", 3)


@pytest.fixture(scope="session")
def cpp_executions_3():
    return _enumerate("cpp", 3)
