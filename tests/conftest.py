"""Shared fixtures: session-scoped caches of enumerated executions.

Several test modules quantify over "all well-formed executions up to a
bound"; enumerating once per session keeps the suite fast.

The autouse ``isolate_pipeline_caches`` fixture snapshots and restores
the harness's per-process hardware/model registries around every test,
so a test that mutates them (monkeypatched machines, dropped-axiom
models) cannot leak state into a later test -- the suite must pass in
any order (``pytest -p no:randomly`` parity).
"""

from __future__ import annotations

import pytest

from repro.enumeration import enumerate_executions, get_config
from repro.harness import pipeline as _pipeline


@pytest.fixture(autouse=True)
def isolate_pipeline_caches():
    """Snapshot/restore the harness's per-process caches around each test."""
    hardware = dict(_pipeline._HARDWARE_CACHE)
    models = dict(_pipeline._MODEL_CACHE)
    yield
    _pipeline._HARDWARE_CACHE.clear()
    _pipeline._HARDWARE_CACHE.update(hardware)
    _pipeline._MODEL_CACHE.clear()
    _pipeline._MODEL_CACHE.update(models)


def _enumerate(target: str, max_events: int) -> list:
    config = get_config(target)
    out = []
    for n in range(1, max_events + 1):
        out.extend(enumerate_executions(config, n))
    return out


@pytest.fixture(scope="session")
def sc_executions_3():
    return _enumerate("sc", 3)


@pytest.fixture(scope="session")
def x86_executions_3():
    return _enumerate("x86", 3)


@pytest.fixture(scope="session")
def power_executions_3():
    return _enumerate("power", 3)


@pytest.fixture(scope="session")
def armv8_executions_3():
    return _enumerate("armv8", 3)


@pytest.fixture(scope="session")
def cpp_executions_3():
    return _enumerate("cpp", 3)
