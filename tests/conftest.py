"""Shared fixtures: session-scoped caches of enumerated executions.

Several test modules quantify over "all well-formed executions up to a
bound"; enumerating once per session keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.enumeration import enumerate_executions, get_config


def _enumerate(target: str, max_events: int) -> list:
    config = get_config(target)
    out = []
    for n in range(1, max_events + 1):
        out.extend(enumerate_executions(config, n))
    return out


@pytest.fixture(scope="session")
def sc_executions_3():
    return _enumerate("sc", 3)


@pytest.fixture(scope="session")
def x86_executions_3():
    return _enumerate("x86", 3)


@pytest.fixture(scope="session")
def power_executions_3():
    return _enumerate("power", 3)


@pytest.fixture(scope="session")
def armv8_executions_3():
    return _enumerate("armv8", 3)


@pytest.fixture(scope="session")
def cpp_executions_3():
    return _enumerate("cpp", 3)
