"""Unit and property tests (package-scoped so module basenames may
overlap with benchmarks/)."""
