"""DOT diagrams, the randomised runner, and suite export."""

import json

from repro.catalog import classics, figures
from repro.enumeration import synthesise
from repro.harness import export_suite
from repro.litmus import edge_summary, execution_to_litmus, to_dot
from repro.sim import RandomisedRunner, TSOMachine


class TestDot:
    def test_fig10_dot_structure(self):
        dot = to_dot(figures.fig10_concrete(), "fig10")
        assert dot.startswith("digraph fig10 {")
        assert dot.rstrip().endswith("}")
        assert "cluster_t0" in dot and "cluster_t1" in dot
        assert "cluster_txn" in dot  # the transaction box
        # fig10's reads all observe the initial value: fr and co edges,
        # the rmw pair, and the data dependency must all be drawn.
        assert "label=fr" in dot and "label=co" in dot
        assert "label=rmw" in dot and "label=data" in dot

    def test_rf_edges_drawn(self):
        dot = to_dot(figures.fig2(), "fig2")
        assert "label=rf" in dot

    def test_atomic_txn_has_bold_box(self):
        from repro.events import ExecutionBuilder, NA

        b = ExecutionBuilder()
        t0 = b.thread()
        with t0.transaction(atomic=True):
            t0.write("x", tags={NA})
        dot = to_dot(b.build())
        assert "style=bold" in dot

    def test_co_shows_immediate_edges_only(self):
        from repro.events import ExecutionBuilder

        b = ExecutionBuilder()
        t0 = b.thread()
        w1 = t0.write("x")
        w2 = t0.write("x")
        w3 = t0.write("x")
        b.co(w1, w2, w3)
        dot = to_dot(b.build())
        # 2 immediate co edges, not the transitive 3rd.
        assert dot.count("label=co") == 2

    def test_edge_summary(self):
        summary = edge_summary(figures.fig2())
        assert "rf:" in summary and "co:" in summary
        assert edge_summary(classics.sb()) != ""


class TestRandomisedRunner:
    def test_sb_observed_by_sampling(self):
        test = execution_to_litmus(classics.sb(), "sb")
        runner = RandomisedRunner(test.program, seed=42)
        result = runner.sample(runs=400, intended_co=test.intended_co)
        assert result.observed, "SB should show up within 400 runs"
        assert 0 < result.rate <= 1

    def test_forbidden_never_observed(self):
        test = execution_to_litmus(figures.fig2(), "fig2")
        runner = RandomisedRunner(test.program, seed=7)
        result = runner.sample(runs=300, intended_co=test.intended_co)
        assert not result.observed

    def test_sampling_agrees_with_exhaustive_positively(self):
        """Anything sampling observes, the exhaustive machine confirms
        (the converse needs enough runs, which §4.2 warns about)."""
        for factory in (classics.sb, figures.fig1):
            test = execution_to_litmus(factory(), "t")
            runner = RandomisedRunner(test.program, seed=1)
            sampled = runner.sample(runs=200, intended_co=test.intended_co)
            if sampled.observed:
                assert TSOMachine(test.program).observable(test.intended_co)

    def test_stop_on_first(self):
        test = execution_to_litmus(figures.fig1(), "fig1")
        runner = RandomisedRunner(test.program, seed=3)
        result = runner.sample(runs=100000, stop_on_first=True)
        assert result.observed and result.runs < 100000

    def test_outcome_tallies(self):
        test = execution_to_litmus(classics.sb(), "sb")
        result = RandomisedRunner(test.program, seed=5).sample(runs=50)
        assert sum(result.outcomes.values()) == 50
        assert len(result.outcomes) >= 2  # SB has several outcomes


class TestExport:
    def test_export_suite(self, tmp_path):
        synthesis = synthesise("x86", 3)
        manifest = export_suite(synthesis, tmp_path)
        assert manifest["target"] == "x86"
        assert len(manifest["forbid"]) == 4
        litmus_files = list((tmp_path / "forbid").glob("*.litmus"))
        dot_files = list((tmp_path / "forbid").glob("*.dot"))
        assert len(litmus_files) == 4 and len(dot_files) == 4
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk["forbid"] == manifest["forbid"]

    def test_exported_files_parse_back(self, tmp_path):
        from repro.litmus import parse_litmus

        synthesis = synthesise("x86", 3)
        export_suite(synthesis, tmp_path, diagrams=False)
        for path in (tmp_path / "forbid").glob("*.litmus"):
            program = parse_litmus(path.read_text())
            assert program.threads
