"""Model verdicts on the classic litmus shapes (§5.1, §5.3, §6).

Ground truth comes from the weak-memory literature and the paper's
prose; every row here is a documented architectural behaviour.
"""

import pytest

from repro.catalog import classics
from repro.models import get_model

ALLOW = True
FORBID = False

CASES = [
    # Coherence shapes: forbidden under every model.
    ("corr", {}, "sc", FORBID),
    ("corr", {}, "x86", FORBID),
    ("corr", {}, "power", FORBID),
    ("corr", {}, "armv8", FORBID),
    ("corr", {}, "cpp", FORBID),
    ("coww", {}, "power", FORBID),
    # Store buffering: the canonical TSO relaxation.
    ("sb", {}, "sc", FORBID),
    ("sb", {}, "x86", ALLOW),
    ("sb", {}, "power", ALLOW),
    ("sb", {}, "armv8", ALLOW),
    ("sb", {"fences": "mfence"}, "x86", FORBID),
    ("sb", {"fences": "sync"}, "power", FORBID),
    ("sb", {"fences": "dmb"}, "armv8", FORBID),
    # Transactions restore order: committed txns have fence semantics.
    ("sb_txn", {}, "x86tm", FORBID),
    ("sb_txn", {}, "powertm", FORBID),
    ("sb_txn", {}, "armv8tm", FORBID),
    ("sb_txn", {}, "tsc", FORBID),
    # Message passing.
    ("mp", {}, "x86", FORBID),
    ("mp", {}, "sc", FORBID),
    ("mp", {}, "power", ALLOW),
    ("mp", {}, "armv8", ALLOW),
    ("mp", {"fence": "lwsync"}, "power", ALLOW),  # needs the reader dep too
    ("mp", {"fence": "lwsync", "dep": "addr"}, "power", FORBID),
    ("mp", {"fence": "sync", "dep": "addr"}, "power", FORBID),
    ("mp", {"fence": "dmb", "dep": "addr"}, "armv8", FORBID),
    ("mp", {"acq_rel": True}, "armv8", FORBID),
    ("mp", {"dep": "addr"}, "power", ALLOW),  # writer side unfenced
    ("mp", {"dep": "ctrl"}, "armv8", ALLOW),  # ctrl does not order R->R
    # Transactional MP (the §9 comparison shape).
    ("mp_txn", {}, "cpptm", FORBID),
    ("mp_txn", {}, "powertm", FORBID),
    ("mp_txn", {}, "x86tm", FORBID),
    ("mp_txn", {}, "armv8tm", FORBID),
    # Transactional reader substitutes for the missing dependency on
    # ARMv8 (TxnOrder); Power's literal Fig. 6 hb cannot lift fre, so
    # the sync variant stays allowed there (documented in EXPERIMENTS.md).
    ("mp_txn_reader", {"fence": "dmb"}, "armv8tm", FORBID),
    ("mp_txn_reader", {"fence": "sync"}, "powertm", ALLOW),
    # Load buffering.
    ("lb", {}, "x86", FORBID),
    ("lb", {}, "power", ALLOW),
    ("lb", {}, "armv8", ALLOW),
    ("lb", {"deps": True}, "power", FORBID),
    ("lb", {"deps": True}, "armv8", FORBID),
    # Write-to-read causality: multicopy-atomicity differences.
    ("wrc", {}, "power", ALLOW),
    ("wrc", {}, "armv8", FORBID),
    ("wrc", {"fence1": "sync"}, "power", FORBID),
    ("wrc", {"fence1": "lwsync"}, "power", FORBID),
    # IRIW.
    ("iriw", {}, "power", ALLOW),
    ("iriw", {}, "armv8", FORBID),
    ("iriw", {}, "x86", FORBID),
    ("iriw", {"fences": "sync"}, "power", FORBID),
]


@pytest.mark.parametrize("shape,kwargs,model_name,expected", CASES)
def test_classic_verdict(shape, kwargs, model_name, expected):
    execution = getattr(classics, shape)(**kwargs)
    model = get_model(model_name)
    assert model.consistent(execution) == expected, (
        f"{shape}({kwargs}) under {model.name}: expected "
        f"{'allow' if expected else 'forbid'}, violated: "
        f"{model.violated_axioms(execution)}"
    )


def test_txn_erasure_restores_baseline_verdict():
    """A TM model on a txn-free execution agrees with its baseline."""
    for shape in (classics.sb, classics.mp, classics.lb, classics.iriw):
        x = shape()
        for name in ("x86tm", "powertm", "armv8tm", "cpptm"):
            model = get_model(name)
            assert model.consistent(x) == model.baseline().consistent(x)


def test_transactional_sb_violates_isolation_or_order():
    x = classics.sb_txn()
    violated = get_model("x86tm").violated_axioms(x)
    assert violated, "SB with transactions must violate a TM axiom"


def test_mp_txn_reader_violates_only_txn_order_on_armv8():
    """The §6.2 shape: caught by TxnOrder and nothing else."""
    x = classics.mp_txn_reader("dmb")
    assert get_model("armv8tm").violated_axioms(x) == ["TxnOrder"]
