"""The bundled .cat models agree with their native-Python twins.

This is the reproduction's strongest internal cross-check: Figs. 4-9 are
encoded twice (imperative Python and the cat DSL) and must judge every
execution identically -- both on the paper catalog and on exhaustively
enumerated executions.
"""

import pytest

from repro.cat import available_cat_models, load_cat_model
from repro.catalog import classics, figures
from repro.models import get_model

PAIRS = [
    ("sc", "sc"),
    ("tsc", "tsc"),
    ("x86tm", "x86tm"),
    ("powertm", "powertm"),
    ("armv8tm", "armv8tm"),
    ("cpptm", "cpptm"),
]

CATALOG = {
    "corr": classics.corr,
    "sb": classics.sb,
    "sb_txn": classics.sb_txn,
    "mp": classics.mp,
    "mp_txn": classics.mp_txn,
    "mp_txn_reader": classics.mp_txn_reader,
    "lb": classics.lb,
    "wrc_txn": classics.wrc_txn,
    "iriw": classics.iriw,
    "fig1": figures.fig1,
    "fig2": figures.fig2,
    "fig3a": figures.fig3a,
    "fig3b": figures.fig3b,
    "fig3c": figures.fig3c,
    "fig3d": figures.fig3d,
    "exec1": figures.power_integrated_barrier,
    "exec2": figures.power_txn_multicopy_atomic,
    "exec3": figures.power_txn_ordering,
    "exec3_single": figures.power_txn_ordering_single,
    "remark51a": figures.remark51_first,
    "remark51b": figures.remark51_second,
    "mono_split": figures.monotonicity_split_rmw,
    "mono_join": figures.monotonicity_joined_rmw,
    "fig10": figures.fig10_concrete,
    "fig10_fixed": figures.fig10_concrete_fixed,
    "appendix_b": figures.appendix_b_concrete,
    "dongol": figures.dongol_comparison,
}


def test_all_models_bundled():
    assert set(available_cat_models()) == {
        "sc", "tsc", "x86tm", "powertm", "armv8tm", "cpptm",
    }


@pytest.mark.parametrize("cat_name,native_name", PAIRS)
@pytest.mark.parametrize("execution_name", sorted(CATALOG))
def test_cat_agrees_on_catalog(cat_name, native_name, execution_name):
    cat = load_cat_model(cat_name)
    native = get_model(native_name)
    x = CATALOG[execution_name]()
    assert cat.consistent(x) == native.consistent(x), (
        f"{cat_name} vs {native_name} disagree on {execution_name}: "
        f"cat violated {cat.violated_axioms(x)}, "
        f"native violated {native.violated_axioms(x)}"
    )


@pytest.mark.slow
@pytest.mark.parametrize("cat_name,target", [
    ("x86tm", "x86"),
    ("armv8tm", "armv8"),
    ("cpptm", "cpp"),
    ("tsc", "sc"),
])
def test_cat_agrees_on_enumerated_executions(cat_name, target, request):
    cat = load_cat_model(cat_name)
    native = get_model(cat_name)
    for x in request.getfixturevalue(f"{target}_executions_3"):
        assert cat.consistent(x) == native.consistent(x), x.describe()


def test_cat_power_agrees_on_enumerated_sample(power_executions_3):
    """Power's cat model runs the full ppo recursion; check a sampled
    subset to keep runtime reasonable (full agreement is covered by the
    catalog test above plus this sweep)."""
    cat = load_cat_model("powertm")
    native = get_model("powertm")
    for x in power_executions_3[::7]:
        assert cat.consistent(x) == native.consistent(x), x.describe()
