#!/usr/bin/env python3
"""The cat model language: write a model, run it, compare models.

Demonstrates the compilers-PL substrate of the reproduction: a weak
memory model written in the cat DSL, parsed and evaluated against
executions, then *compared* against the bundled full model to find a
distinguishing execution -- Memalloy's original model-comparison
workflow (§4), in miniature.

Run:  python examples/cat_interpreter.py
"""

from repro.cat import load_cat_model, parse
from repro.cat.eval import CatModel
from repro.catalog import classics, figures
from repro.enumeration import enumerate_executions, get_config

# An x86 TM model whose author forgot the implicit transaction fences
# (the tfence term of Fig. 5) -- a plausible modelling mistake.
BROKEN_X86_TM = '''
"x86 TM without implicit transaction fences (deliberately wrong)"

acyclic poloc | com as Coherence
empty rmw & (fre ; coe) as RMWIsol

let ppo = (cross(W, W) | cross(R, W) | cross(R, R)) & po
let implied = [LKD] ; po | po ; [LKD]       (* <- tfence missing! *)
let hb = mfence | ppo | implied | rfe | fr | co
acyclic hb as Order

acyclic stronglift(com, stxn) as StrongIsol
acyclic stronglift(hb, stxn) as TxnOrder
'''


def main() -> None:
    broken = CatModel(parse(BROKEN_X86_TM), transactional=True)
    full = load_cat_model("x86tm")
    print(f"loaded: {full.name!r}")
    print(f"custom: {broken.name!r}")
    print()

    print("=== verdicts on catalog executions ===")
    for name, x in (
        ("SB", classics.sb()),
        ("SB-txn", classics.sb_txn()),
        ("Fig2", figures.fig2()),
    ):
        print(
            f"  {name:<8} full: "
            f"{'allow' if full.consistent(x) else 'forbid':<7} "
            f"broken: {'allow' if broken.consistent(x) else 'forbid'}"
        )
    print()

    print("=== Memalloy-style comparison: find a distinguishing execution ===")
    config = get_config("x86")
    found = None
    examined = 0
    for n in range(2, 5):
        for x in enumerate_executions(config, n):
            examined += 1
            if broken.consistent(x) and not full.consistent(x):
                found = x
                break
        if found:
            break
    assert found is not None
    print(f"  examined {examined} candidate executions")
    print("  the broken model ALLOWS but the full model FORBIDS:")
    print("  " + found.describe().replace("\n", "\n  "))
    print(f"  full model violates: {full.violated_axioms(found)}")


if __name__ == "__main__":
    main()
