#!/usr/bin/env python3
"""Conformance-test synthesis and hardware validation (§4.2, §5.3, §6.2).

Regenerates the x86 rows of Table 1 at a laptop-scale bound, prints a
couple of the synthesised Forbid tests as x86 assembly, validates the
suites on the simulated TSX machine, and replays the §6.2 story: the
ARMv8 suite catching a TxnOrder bug in a "buggy RTL" oracle.

Run:  python examples/synthesis_x86.py
"""

from repro import api
from repro.harness.figure7 import run_figure7
from repro.harness.rtl_bug import run_rtl_bug
from repro.harness.table1 import run_table1
from repro.litmus import execution_to_litmus, render


def main() -> None:
    print("Synthesising the x86 Forbid/Allow suites (|E| <= 3)...")
    synthesis = api.synthesize("x86", 3)
    print(
        f"  {len(synthesis.forbidden)} Forbid tests "
        f"(paper's Table 1 count at this bound: 4), "
        f"{len(synthesis.allowed)} Allow tests, "
        f"{synthesis.candidates_examined} candidates in "
        f"{synthesis.elapsed:.1f}s"
    )
    print()

    print("=== two synthesised minimally-forbidden tests ===")
    for i, x in enumerate(synthesis.forbidden[:2]):
        test = execution_to_litmus(x, f"x86-forbid-{i}")
        print(render(test.program, "x86"))
        print()

    print("=== Table 1 (x86), validated on the simulated TSX machine ===")
    print(run_table1("x86", 3, synthesis=synthesis).render())
    print()

    print("=== Figure 7: when were the Forbid tests discovered? ===")
    print(run_figure7("x86", 3, synthesis=synthesis).render())
    print()

    print("=== §6.2: the ARMv8 suite vs. a buggy RTL prototype ===")
    print(run_rtl_bug(max_events=3).render())


if __name__ == "__main__":
    main()
