#!/usr/bin/env python3
"""Quickstart: executions, models, litmus tests, simulated hardware.

Builds the paper's Fig. 1 execution and its transactional variant
(Fig. 2), judges them under several memory models, converts them to
litmus tests, and runs the tests on the simulated TSX machine --
the whole toolchain in ~60 lines.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.events import ExecutionBuilder
from repro.litmus import execution_to_litmus, render
from repro.sim import TSOMachine


def build_fig1():
    """Fig. 1: T0 writes then reads x; T1 writes x; the read observes
    T1's (coherence-later) write."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    a = t0.write("x")
    r = t0.read("x")
    c = t1.write("x")
    b.co(a, c)
    b.rf(c, r)
    return b.build()


def build_fig2():
    """Fig. 2: the same graph, but T0's events form a transaction --
    now the external write interferes with the transaction's isolation."""
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        a = t0.write("x")
        r = t0.read("x")
    c = t1.write("x")
    b.co(a, c)
    b.rf(c, r)
    return b.build()


def main() -> None:
    fig1, fig2 = build_fig1(), build_fig2()

    print("=== Fig. 1 (no transaction) ===")
    print(fig1.describe())
    for name in ("sc", "x86", "x86tm", "powertm", "armv8tm"):
        model = api.load_model(name)
        verdict = "allowed" if api.check(fig1, model) else "FORBIDDEN"
        print(f"  {model.name:<10} {verdict}")

    print()
    print("=== Fig. 2 (transactional) ===")
    print(fig2.describe())
    for name in ("x86", "x86tm", "powertm", "armv8tm", "tsc"):
        model = api.load_model(name)
        verdict = "allowed" if api.check(fig2, model) else "FORBIDDEN"
        extra = ""
        if not api.check(fig2, model):
            extra = f"  (violates {', '.join(model.violated_axioms(fig2))})"
        print(f"  {model.name:<10} {verdict}{extra}")

    print()
    print("=== Fig. 2 as a litmus test (§3.2) ===")
    test = execution_to_litmus(fig2, "fig2")
    print(render(test.program, "pseudo"))
    print()
    print(render(test.program, "x86"))

    print()
    print("=== Running both tests on the simulated TSX machine ===")
    for name, execution in (("fig1", fig1), ("fig2", fig2)):
        test = execution_to_litmus(execution, name)
        machine = TSOMachine(test.program)
        seen = machine.observable(test.intended_co)
        print(f"  {name}: {'SEEN' if seen else 'never seen'} "
              f"(model says {'allowed' if api.check(execution, 'x86tm') else 'forbidden'})")


if __name__ == "__main__":
    main()
