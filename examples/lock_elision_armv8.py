#!/usr/bin/env python3
"""Lock elision under weak memory: Example 1.1, end to end (§1.1, §8.3).

For each architecture this script:

1. builds the concrete program -- the recommended spinlock around the
   critical region ``x ← x + k`` on thread 0, and an elided (purely
   transactional) critical region ``x ← v`` on thread 1;
2. asks whether the mutual-exclusion-violating outcome (thread 0 reads
   the initial x, yet its write ends up coherence-final) is reachable
   under the architecture's TM model;
3. prints the witness for the architectures where elision is unsound.

Expected output: ARMv8 broken (the paper's headline, Example 1.1);
ARMv8+DMB and x86 sound; Power broken under the literal Fig. 6 model --
this reproduction's finding (the paper's search timed out with no
verdict; see EXPERIMENTS.md).

Run:  python examples/lock_elision_armv8.py
"""

from repro.litmus import find_witness, render
from repro.metatheory import body, build_concrete_program, check_lock_elision
from repro.models import get_model

BODY_CR = body(("update", "x"))  # x <- x + k   (LDR; ADD; STR with data dep)
BODY_TXN = body(("write", "x"))  # x <- v       (single store)
BAD_REGISTERS = {(0, "a0"): 0}  # the CR read saw the initial value...
BAD_MEMORY = {"x": 1}  # ...yet its write is coherence-final


def main() -> None:
    print("Critical regions: T0 (locked): x <- x+k | T1 (elided): x <- v")
    print("Mutual exclusion forbids: T0 reads 0 AND T0's write is final.")
    print()

    for arch, render_as in (
        ("x86", "x86"),
        ("power", "power"),
        ("armv8", "armv8"),
        ("armv8-fixed", "armv8"),
    ):
        model = get_model("armv8tm" if arch.startswith("armv8") else f"{arch}tm")
        program = build_concrete_program(
            arch, BODY_CR, BODY_TXN, BAD_REGISTERS, BAD_MEMORY,
            name=f"example1.1-{arch}",
        )
        witness = find_witness(program, model)
        status = "UNSOUND (witness found)" if witness else "sound here"
        print(f"--- {arch}: lock elision is {status}")
        if witness:
            print(render(program, render_as))
            print("witness execution:")
            print(witness.candidate.execution.describe())
        print()

    print("=== exhaustive sweep over the §8.3 body menu ===")
    for arch in ("x86", "power", "armv8", "armv8-fixed"):
        result = check_lock_elision(arch)
        verdict = "sound" if result.sound else "COUNTEREXAMPLE"
        print(
            f"  {arch:<12} {verdict:<16} "
            f"({result.outcomes_checked} outcomes, {result.elapsed:.1f}s)"
        )


if __name__ == "__main__":
    main()
