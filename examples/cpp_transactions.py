#!/usr/bin/env python3
"""C++ transactions: races, synchronisation, theorems, compilation (§7, §8.2).

Demonstrates:

* the §7.2 subtlety that ``atomic{ x=1; } || atomic_store(&x, 2)`` is
  racy (the transactional store is still a non-atomic access);
* transactional synchronisation making non-atomic message passing
  race-free (the tsw reformulation);
* Theorem 7.2 (atomic transactions are strongly isolated) on a concrete
  execution;
* compilation of a transactional C++ program to x86, Power, and ARMv8
  (§8.2), with the inserted fences visible.

Run:  python examples/cpp_transactions.py
"""

from repro.events import ACQ, ExecutionBuilder, NA, REL, RLX
from repro.metatheory import compile_execution
from repro.models import CppModel, get_model
from repro.models.isolation import strongly_isolated_atomic


def racy_atomic_transaction():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction(atomic=True):
        w1 = t0.write("x", tags={NA})
    w2 = t1.write("x", tags={RLX})
    b.co(w1, w2)
    return b.build()


def transactional_message_passing():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        t0.write("x", tags={NA})
        wy = t0.write("y", tags={NA})
    with t1.transaction():
        ry = t1.read("y", tags={NA})
        rx = t1.read("x", tags={NA})
    b.rf(wy, ry)
    # rx reads the initial value -- forbidden? let's find out.
    return b.build()


def atomic_txn_with_interference():
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction(atomic=True):
        r1 = t0.read("x", tags={NA})
        w = t0.write("y", tags={NA})
    wx = t1.write("x", tags={REL})
    ry = t1.read("y", tags={ACQ})
    b.rf(wx, r1)
    return b.build()


def main() -> None:
    model = CppModel(transactional=True)

    print("=== §7.2: atomic{ x=1; } || atomic_store(&x, 2) ===")
    x = racy_atomic_transaction()
    print(f"  consistent: {model.consistent(x)}")
    print(f"  race-free:  {model.race_free(x)}   (paper: racy!)")
    print(f"  racing pairs: {sorted(model.races(x).pairs)}")
    print()

    print("=== transactional MP with non-atomic accesses ===")
    x = transactional_message_passing()
    print(f"  consistent: {model.consistent(x)}")
    print(f"  race-free:  {model.race_free(x)} "
          "(tsw: conflicting transactions synchronise)")
    print(f"  tsw edges: {sorted(model.tsw(x).pairs)}")
    print()

    print("=== Theorem 7.2: the dichotomy on a concrete execution ===")
    # A non-transactional access interfering with an atomic transaction:
    # the theorem says this is either a data race (program undefined) or
    # the transaction remains strongly isolated.
    x = atomic_txn_with_interference()
    print(f"  race-free: {model.race_free(x)} "
          "(the interference IS a race: non-atomic read vs. atomic write)")
    print(f"  atomic txn strongly isolated anyway: "
          f"{strongly_isolated_atomic(x)}")
    print()

    print("=== §8.2: compiling a transactional C++ execution ===")
    b = ExecutionBuilder()
    t0, t1 = b.thread(), b.thread()
    with t0.transaction():
        t0.write("x", tags={NA})
        wy = t0.write("y", tags={REL})
    ry = t1.read("y", tags={ACQ})
    rx = t1.read("x", tags={NA})
    b.rf(wy, ry)
    source = b.build()
    print("source (C++):")
    print(source.describe())
    for target in ("x86", "power", "armv8"):
        compiled = compile_execution(source, target)
        fences = ", ".join(
            e.fence_flavour for e in compiled.target.events if e.is_fence
        ) or "none"
        tags = ", ".join(
            sorted(
                tag
                for e in compiled.target.events
                if not e.is_fence
                for tag in e.tags
            )
        ) or "none"
        hw_model = get_model(f"{target}tm")
        print(
            f"  -> {target:<6} fences inserted: {fences:<16} "
            f"access tags: {tags:<10} | target-consistent: "
            f"{hw_model.consistent(compiled.target)}"
        )


if __name__ == "__main__":
    main()
